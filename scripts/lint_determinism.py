#!/usr/bin/env python3
"""Determinism linter: statically bans nondeterminism sources in the sim core.

The reproduction's headline results rest on bit-reproducible simulation runs
(see tests/integration/determinism_fingerprint_test.cc). The runtime
fingerprint goldens catch a nondeterminism bug only after it lands; this
linter rejects the usual sources at review time, before a seed-dependent
heisendiff ever reaches the goldens.

Scanned by default: src/sim, src/core, src/cluster, src/workload,
src/runner, src/faults, and src/metrics — the modules whose execution order
feeds the event loop, plus the parallel sweep/scenario layer whose cell
ordering and seed derivation must be reproducible, plus the fault-injection
subsystem whose failure schedules must replay bit-identically, plus the
metrics/perf-counter layer that instruments the hot paths (its one wall-clock
read is justified inline: write-only observability). Banned constructs:

  wall-clock        std::chrono::{system,steady,high_resolution}_clock,
                    time(NULL)-style calls, clock(), gettimeofday(
  libc-rng          rand(), srand(), random(), drand48()
  random-device     std::random_device (nondeterministic seed source)
  unordered-iter    any use of std::unordered_map / std::unordered_set /
                    std::unordered_multimap / std::unordered_multiset.
                    Hash-table iteration order depends on libstdc++ version,
                    pointer values, and insertion history; in event-order-
                    sensitive code even a lookup-only table invites a later
                    `for (auto& [k, v] : table)`. Use std::map / sorted
                    vectors, or justify with the escape hatch.
  pointer-key       ordered containers keyed on raw pointers
                    (std::set<T*>, std::map<T*, ...>) and std::less<T*> —
                    address order varies run to run under ASLR.
  pointer-compare   relational comparison of addresses-of (&a < &b) used as
                    a tiebreak or sort key.
  uninit-member     scalar class/struct members in headers with no default
                    initializer (`double x_;`): reads of indeterminate
                    values are UB and seed-dependent. Initialize in-class
                    even when a constructor also assigns.
  env-read          getenv() — environment-dependent behavior.

Escape hatch: append `// NOLINT-determinism(reason)` to the offending line,
or put it alone on the line directly above. The reason is mandatory; an
empty `NOLINT-determinism()` is itself an error. Policy: the reason must say
why the construct cannot affect event order (e.g. "lookup-only, never
iterated" is NOT sufficient for unordered containers — prefer std::map).

Usage:
  lint_determinism.py [--root DIR] [paths...]   # default: the five dirs above
  lint_determinism.py --list-files              # print the scanned file set
  lint_determinism.py --self-test               # run the fixture self-test

Exit status: 0 clean, 1 violations found, 2 internal/usage error.
Stdlib-only; no third-party dependencies.
"""

import argparse
import os
import re
import sys

DEFAULT_PATHS = ["src/sim", "src/core", "src/cluster", "src/workload", "src/runner",
                 "src/faults", "src/metrics"]
SOURCE_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

NOLINT_RE = re.compile(r"//\s*NOLINT-determinism\((?P<reason>[^)]*)\)")

# Each rule: (name, compiled regex, human message). Applied line-by-line to
# code with comments and string literals blanked out.
RULES = [
    ("wall-clock",
     re.compile(r"std::chrono::(system_clock|steady_clock|high_resolution_clock)"),
     "wall-clock read; simulation time must come from Simulator::now()"),
    ("wall-clock",
     re.compile(r"(?<![\w:.])(time|clock|gettimeofday|clock_gettime)\s*\("),
     "libc wall-clock call; simulation time must come from Simulator::now()"),
    ("libc-rng",
     re.compile(r"(?<![\w:.])(rand|srand|random|drand48|lrand48)\s*\("),
     "libc RNG; use the seeded vrc::sim::Rng instead"),
    ("random-device",
     re.compile(r"std::random_device"),
     "nondeterministic seed source; seeds must be explicit parameters"),
    ("unordered-iter",
     re.compile(r"std::unordered_(map|set|multimap|multiset)\b"),
     "hash-table iteration order is unstable across runs; use std::map or a "
     "sorted vector"),
    ("pointer-key",
     re.compile(r"std::(multi)?(set|map)\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*"),
     "ordered container keyed on a raw pointer; address order varies under "
     "ASLR — key on a stable id instead"),
    ("pointer-key",
     re.compile(r"std::less\s*<\s*(const\s+)?[A-Za-z_][\w:]*\s*\*\s*>"),
     "std::less over raw pointers; address order varies under ASLR"),
    ("pointer-compare",
     re.compile(r"&\s*[A-Za-z_]\w*(\[\w+\])?\s*[<>]=?\s*&\s*[A-Za-z_]\w*"),
     "address comparison as an ordering; varies run to run — compare stable "
     "ids instead"),
    ("env-read",
     re.compile(r"(?<![\w:.])getenv\s*\("),
     "environment read; pass configuration explicitly so runs are "
     "reproducible from the command line alone"),
]

# uninit-member is header-only and structural, handled separately from RULES.
SCALAR_MEMBER_RE = re.compile(
    r"^\s*(?:const\s+)?"
    r"(?:bool|char|short|int|long|float|double|unsigned(?:\s+\w+)?"
    r"|std::u?int(?:8|16|32|64|ptr)_t|u?int(?:8|16|32|64|ptr)_t"
    r"|std::size_t|size_t|std::ptrdiff_t"
    r"|SimTime|EventId|vrc::sim::SimTime|vrc::sim::EventId)"
    r"(?:\s+(?:const\s+)?)"
    r"[A-Za-z_]\w*\s*;\s*$")


class Violation:
    def __init__(self, path, line_number, rule, message, line_text):
        self.path = path
        self.line_number = line_number
        self.rule = rule
        self.message = message
        self.line_text = line_text

    def __str__(self):
        return (f"{self.path}:{self.line_number}: [{self.rule}] {self.message}\n"
                f"    {self.line_text.strip()}")


def blank_comments_and_strings(lines):
    """Returns lines with comments and string/char literals overwritten by
    spaces, so rules never fire on prose. Tracks /* */ across lines; raw
    strings are rare in this codebase and handled as plain strings."""
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        in_string = None  # '"' or "'" while inside a literal
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block_comment:
                if ch == "*" and nxt == "/":
                    in_block_comment = False
                    result.append("  ")
                    i += 2
                    continue
                result.append(" ")
                i += 1
                continue
            if in_string:
                if ch == "\\":
                    result.append("  ")
                    i += 2
                    continue
                if ch == in_string:
                    in_string = None
                result.append(" " if ch != in_string else " ")
                i += 1
                continue
            if ch == "/" and nxt == "/":
                result.append(" " * (n - i))
                break
            if ch == "/" and nxt == "*":
                in_block_comment = True
                result.append("  ")
                i += 2
                continue
            if ch in "\"'":
                in_string = ch
                result.append(" ")
                i += 1
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def in_class_body_mask(code_lines):
    """Best-effort per-line flag: inside a class/struct body but not inside a
    function body. Drives the uninit-member rule. Tracks brace depth and the
    depth at which each class/struct body opened."""
    mask = []
    depth = 0
    class_depths = []  # brace depth of each open class/struct body
    pending_class = False
    for line in code_lines:
        inside = bool(class_depths) and depth == class_depths[-1] + 1
        mask.append(inside)
        stripped = line.strip()
        if re.match(r"(template\s*<.*>\s*)?(class|struct)\s+[A-Za-z_]", stripped) \
                and not stripped.endswith(";"):
            pending_class = True
        for ch in line:
            if ch == "{":
                if pending_class:
                    class_depths.append(depth)
                    pending_class = False
                depth += 1
            elif ch == "}":
                depth -= 1
                if class_depths and depth == class_depths[-1]:
                    class_depths.pop()
        if pending_class and stripped.endswith(";"):
            pending_class = False  # forward declaration
    return mask


def lint_file(path, display_path=None):
    display = display_path or path
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            raw_lines = fh.read().splitlines()
    except OSError as err:
        raise RuntimeError(f"cannot read {path}: {err}")

    code_lines = blank_comments_and_strings(raw_lines)
    violations = []
    nolint_errors = []

    def nolint_reason(index):
        """NOLINT on this line, or alone on the previous line."""
        match = NOLINT_RE.search(raw_lines[index])
        if match is None and index > 0:
            prev = raw_lines[index - 1].strip()
            prev_match = NOLINT_RE.search(prev)
            if prev_match and prev.startswith("//"):
                match = prev_match
        if match is None:
            return None
        reason = match.group("reason").strip()
        if not reason:
            nolint_errors.append(Violation(
                display, index + 1, "empty-nolint",
                "NOLINT-determinism requires a non-empty reason", raw_lines[index]))
            return None
        return reason

    for index, code in enumerate(code_lines):
        for rule, pattern, message in RULES:
            if pattern.search(code):
                if nolint_reason(index) is None:
                    violations.append(Violation(
                        display, index + 1, rule, message, raw_lines[index]))

    mask = in_class_body_mask(code_lines)
    for index, code in enumerate(code_lines):
        if not mask[index]:
            continue
        if "static" in code or "constexpr" in code or "using" in code:
            continue
        if SCALAR_MEMBER_RE.match(code):
            if nolint_reason(index) is None:
                violations.append(Violation(
                    display, index + 1, "uninit-member",
                    "scalar member without a default initializer; reads "
                    "of indeterminate values are seed-dependent UB",
                    raw_lines[index]))

    # An empty NOLINT reason is an error even when no rule fired on the line:
    # otherwise a reasonless suppression silently rots in place.
    for index, raw in enumerate(raw_lines):
        match = NOLINT_RE.search(raw)
        if match and not match.group("reason").strip():
            violation = Violation(
                display, index + 1, "empty-nolint",
                "NOLINT-determinism requires a non-empty reason", raw)
            if str(violation) not in {str(v) for v in nolint_errors}:
                nolint_errors.append(violation)

    return violations + nolint_errors


def collect_files(paths, root):
    files = []
    for path in paths:
        full = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isfile(full):
            files.append((full, os.path.relpath(full, root)))
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for name in sorted(filenames):
                    if name.endswith(SOURCE_EXTENSIONS):
                        file_path = os.path.join(dirpath, name)
                        files.append((file_path, os.path.relpath(file_path, root)))
        else:
            raise RuntimeError(f"no such file or directory: {full}")
    files.sort(key=lambda pair: pair[1])
    return files


def run_lint(paths, root):
    violations = []
    for full, rel in collect_files(paths, root):
        violations.extend(lint_file(full, rel))
    return violations


def self_test(root):
    """Runs the linter over the seeded fixtures and checks the findings."""
    testdata = os.path.join(root, "scripts", "testdata", "determinism")
    failures = []

    # violations.cc: every line tagged `// SEED: rule` must be reported with
    # exactly that rule, and no untagged line may be reported.
    seeded_path = os.path.join(testdata, "violations.cc")
    seed_re = re.compile(r"SEED:\s*([\w-]+)")
    expected = {}
    with open(seeded_path, encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            match = seed_re.search(line)
            if match:
                expected[line_number] = match.group(1)

    found = {}
    for violation in lint_file(seeded_path, "violations.cc"):
        found.setdefault(violation.line_number, []).append(violation.rule)

    for line_number, rule in sorted(expected.items()):
        if rule not in found.get(line_number, []):
            failures.append(f"violations.cc:{line_number}: expected rule "
                            f"'{rule}', got {found.get(line_number, [])}")
    for line_number, rules in sorted(found.items()):
        if line_number not in expected:
            failures.append(f"violations.cc:{line_number}: unexpected "
                            f"finding(s) {rules}")

    # clean.cc: must produce zero findings (exercises the NOLINT escape
    # hatch, comment/string blanking, and initialized members).
    clean_path = os.path.join(testdata, "clean.cc")
    clean_findings = lint_file(clean_path, "clean.cc")
    for violation in clean_findings:
        failures.append(f"clean.cc: unexpected finding: {violation}")

    # Recursive discovery over the default paths must include the indexed
    # cluster-state files: they maintain the heaps every placement decision
    # reads, so a discovery regression would drop the most order-sensitive
    # code from the lint.
    scanned = {rel for _full, rel in collect_files(DEFAULT_PATHS, root)}
    for required in ("src/cluster/cluster_index.h",
                     "src/cluster/cluster_index.cc",
                     "src/cluster/load_index.cc",
                     "src/cluster/workstation.cc",
                     "src/cluster/node_activity.h",
                     "src/metrics/perf_counters.h",
                     "src/metrics/perf_counters.cc"):
        if required not in scanned:
            failures.append(f"default scan set is missing {required}")

    if failures:
        print("lint_determinism self-test FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"lint_determinism self-test passed: {len(expected)} seeded "
          f"violations detected, clean fixture clean.")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="determinism linter for the simulation core")
    parser.add_argument("paths", nargs="*",
                        help=f"files or directories (default: {DEFAULT_PATHS})")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-fixture self-test and exit")
    parser.add_argument("--list-files", action="store_true",
                        help="print the file set that would be scanned and "
                             "exit (for auditing lint coverage)")
    args = parser.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    if args.self_test:
        return self_test(root)

    paths = args.paths or DEFAULT_PATHS
    if args.list_files:
        try:
            for _full, rel in collect_files(paths, root):
                print(rel)
        except RuntimeError as err:
            print(f"lint_determinism: {err}", file=sys.stderr)
            return 2
        return 0
    try:
        violations = run_lint(paths, root)
    except RuntimeError as err:
        print(f"lint_determinism: {err}", file=sys.stderr)
        return 2

    if violations:
        print(f"lint_determinism: {len(violations)} violation(s):\n",
              file=sys.stderr)
        for violation in violations:
            print(violation, file=sys.stderr)
        print("\nSuppress a justified use with "
              "`// NOLINT-determinism(reason)` — see DESIGN.md "
              "\"Determinism rules\".", file=sys.stderr)
        return 1
    print("lint_determinism: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
