#!/usr/bin/env python3
"""Back-compat shim: the determinism linter is now a vrc_lint analyzer.

This entry point survives so older docs, CI snippets, and muscle memory keep
working; it forwards to `vrc_lint.py --analyzer determinism` with the same
flags it always had (`--root`, `--self-test`, `--list-files`, paths).
Prefer scripts/vrc_lint.py, which also runs the layering, publish-audit,
and heap-order analyzers (DESIGN.md §13). Rules and rationale:
scripts/vrc_lint/determinism.py; fixtures:
scripts/testdata/vrc_lint/determinism/.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from vrc_lint import core  # noqa: E402

if __name__ == "__main__":
    sys.exit(core.main(only_analyzer="determinism"))
