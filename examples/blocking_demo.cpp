// Narrated demonstration of the job blocking problem and its resolution.
//
// Builds the paper's §1 situation by hand on an 8-node cluster: two jobs
// with unexpectedly large (and initially invisible) memory demands collide
// on one workstation while every other workstation is too full to take
// either of them. Runs the scenario under G-Loadsharing (watch the node
// thrash) and under V-Reconfiguration (watch the reservation resolve it),
// printing the scheduler's decisions as a timeline.
//
//   ./blocking_demo [--quiet]
#include <cstdio>

#include "core/baselines.h"
#include "core/experiment.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"

using namespace vrc;

namespace {

workload::JobSpec growing_job(workload::JobId id, SimTime submit, double cpu_seconds,
                              Bytes peak, workload::NodeId home, double touch_rate) {
  workload::JobSpec spec;
  spec.id = id;
  spec.program = peak > megabytes(150) ? "big" : "normal";
  spec.submit_time = submit;
  spec.home_node = home;
  spec.cpu_seconds = cpu_seconds;
  spec.touch_rate = touch_rate;
  // Demand invisible at submission, fully grown by 20% of progress.
  spec.memory = workload::MemoryProfile::phased(
      {{0.0, megabytes(4)}, {0.2, peak}});
  return spec;
}

void build_scenario(cluster::Cluster& cluster) {
  // The two large jobs land on node 0 before anyone knows their appetite.
  cluster.submit_job(growing_job(1, 0.0, 300.0, megabytes(200), 0, 1500.0));
  cluster.submit_job(growing_job(2, 0.1, 300.0, megabytes(200), 0, 1500.0));
  // Every other node is two-thirds full: no 200 MB hole exists anywhere.
  workload::JobId id = 10;
  for (workload::NodeId node = 1; node < 8; ++node) {
    cluster.submit_job(growing_job(id++, 0.0, 150.0, megabytes(110), node, 200.0));
    cluster.submit_job(growing_job(id++, 0.0, 180.0, megabytes(110), node, 200.0));
  }
}

metrics::RunReport run_scenario(cluster::SchedulerPolicy& policy) {
  sim::Simulator sim;
  cluster::Cluster cluster(sim, cluster::ClusterConfig::paper_cluster1(8), policy);
  metrics::Collector collector(cluster);
  build_scenario(cluster);
  sim.run_until(100000.0);
  collector.stop();
  metrics::RunReport report = collector.report("blocking-demo", policy.name());
  report.policy_stats = policy.stats();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  util::FlagSet flags;
  flags.add_bool("quiet", &quiet, "suppress the scheduler-decision timeline");
  if (!flags.parse(argc, argv)) return 1;
  if (!quiet) util::set_log_level(util::LogLevel::kInfo);

  std::printf("=== G-Loadsharing: the blocking problem unfolds ===\n");
  core::GLoadSharing baseline;
  const auto base = run_scenario(baseline);

  std::printf("\n=== V-Reconfiguration: adaptive reservation resolves it ===\n");
  core::VReconfiguration vrecon;
  const auto ours = run_scenario(vrecon);

  util::Table table({"metric", "G-Loadsharing", "V-Reconfiguration"});
  using util::Table;
  table.add_row({"makespan (s)", Table::fmt(base.makespan, 0), Table::fmt(ours.makespan, 0)});
  table.add_row({"total execution time (s)", Table::fmt(base.total_execution, 0),
                 Table::fmt(ours.total_execution, 0)});
  table.add_row({"total paging time (s)", Table::fmt(base.total_page, 0),
                 Table::fmt(ours.total_page, 0)});
  table.add_row({"average slowdown", Table::fmt(base.avg_slowdown),
                 Table::fmt(ours.avg_slowdown)});
  table.add_row({"worst slowdown", Table::fmt(base.max_slowdown),
                 Table::fmt(ours.max_slowdown)});
  std::printf("\n%s", table.to_ascii().c_str());
  std::printf("%s\n%s", metrics::describe(base).c_str(), metrics::describe(ours).c_str());
  return 0;
}
