// Full reproduction run of one workload-group-1 experiment: generates (or
// loads) a SPEC trace, runs all four shipped policies on paper cluster 1,
// and prints the §5 execution-time breakdown per policy.
//
//   ./spec_cluster [--trace N] [--nodes N] [--save-trace FILE] [--load-trace FILE]
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  int trace_index = 3;
  int nodes = 32;
  std::string save_path;
  std::string load_path;
  vrc::util::FlagSet flags;
  flags.add_int("trace", &trace_index, "standard trace index 1..5");
  flags.add_int("nodes", &nodes, "number of workstations");
  flags.add_string("save-trace", &save_path, "write the generated trace to this file");
  flags.add_string("load-trace", &load_path, "replay a trace file instead of generating");
  if (!flags.parse(argc, argv)) return 1;

  vrc::workload::Trace trace =
      load_path.empty()
          ? vrc::workload::standard_trace(vrc::workload::WorkloadGroup::kSpec, trace_index,
                                          static_cast<std::uint32_t>(nodes))
          : vrc::workload::Trace::load_from_file(load_path);
  if (!save_path.empty()) {
    if (!trace.save_to_file(save_path)) {
      std::fprintf(stderr, "cannot write %s\n", save_path.c_str());
      return 1;
    }
    std::printf("trace saved to %s\n", save_path.c_str());
  }

  const auto config =
      vrc::core::paper_cluster_for(trace.group(), static_cast<std::size_t>(nodes));
  std::printf("%s: %zu jobs, %.0f s submission window, %.0f CPU-seconds of work\n",
              trace.name().c_str(), trace.size(), trace.duration(),
              trace.total_cpu_seconds());

  using vrc::util::Table;
  Table table({"policy", "T_exe (s)", "T_cpu (s)", "T_page (s)", "T_que (s)", "T_mig (s)",
               "avg slowdown", "makespan (s)"});
  for (auto kind :
       {vrc::core::PolicyKind::kLocalOnly, vrc::core::PolicyKind::kGLoadSharing,
        vrc::core::PolicyKind::kSuspension, vrc::core::PolicyKind::kVReconfiguration}) {
    const auto report = vrc::core::run_policy_on_trace(kind, trace, config);
    table.add_row({report.policy, Table::fmt(report.total_execution, 0),
                   Table::fmt(report.total_cpu, 0), Table::fmt(report.total_page, 0),
                   Table::fmt(report.total_queue, 0), Table::fmt(report.total_migration, 0),
                   Table::fmt(report.avg_slowdown), Table::fmt(report.makespan, 0)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
