// Writing a custom scheduling policy against the public API.
//
// Implements "Random-Fit": each arriving job goes to a uniformly random
// workstation that currently accepts work — a classic strawman — and races
// it against the shipped policies on the same trace. Demonstrates the
// SchedulerPolicy hooks, cluster operations, and per-policy statistics.
//
//   ./custom_policy [--jobs N] [--nodes N]
#include <cstdio>

#include "core/experiment.h"
#include "sim/rng.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_generator.h"

using namespace vrc;

namespace {

/// Random-fit: place each arrival on a random workstation that passes the
/// live admission check; retry pending jobs periodically.
class RandomFit : public cluster::SchedulerPolicy {
 public:
  explicit RandomFit(std::uint64_t seed = 7) : rng_(seed) {}

  const char* name() const override { return "Random-Fit"; }

  void on_job_arrival(cluster::Cluster& cluster, cluster::RunningJob& job) override {
    if (!try_place(cluster, job)) ++blocked_;
  }

  void on_periodic(cluster::Cluster& cluster) override {
    for (cluster::RunningJob* job : cluster.pending_jobs()) {
      if (!try_place(cluster, *job)) break;
    }
  }

  std::vector<std::pair<std::string, double>> stats() const override {
    return {{"blocked_submissions", static_cast<double>(blocked_)}};
  }

 private:
  bool try_place(cluster::Cluster& cluster, cluster::RunningJob& job) {
    const Bytes hint = std::max(job.demand, cluster.config().admission_demand_estimate);
    const std::size_t n = cluster.num_nodes();
    const std::size_t start = rng_.uniform_index(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto node_id = static_cast<workload::NodeId>((start + i) % n);
      if (cluster.node(node_id).accepts_new_job(hint)) {
        if (node_id == job.home_node) {
          cluster.place_local(job, node_id);
        } else {
          cluster.place_remote(job, node_id);
        }
        return true;
      }
    }
    return false;
  }

  sim::Rng rng_;
  std::uint64_t blocked_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int num_jobs = 300;
  int nodes = 16;
  util::FlagSet flags;
  flags.add_int("jobs", &num_jobs, "jobs to generate");
  flags.add_int("nodes", &nodes, "number of workstations");
  if (!flags.parse(argc, argv)) return 1;

  workload::TraceParams params;
  params.name = "custom-demo";
  params.group = workload::WorkloadGroup::kSpec;
  params.num_jobs = static_cast<std::size_t>(num_jobs);
  params.duration = 1800.0;
  params.num_nodes = static_cast<std::uint32_t>(nodes);
  params.seed = 21;
  const auto trace = workload::generate_trace(params);
  const auto config = core::paper_cluster_for(trace.group(), static_cast<std::size_t>(nodes));

  using util::Table;
  Table table({"policy", "T_exe (s)", "avg slowdown", "p95 slowdown", "makespan (s)"});

  RandomFit random_fit;
  const auto random_report = core::run_experiment(trace, config, random_fit);
  table.add_row({random_report.policy, Table::fmt(random_report.total_execution, 0),
                 Table::fmt(random_report.avg_slowdown), Table::fmt(random_report.p95_slowdown),
                 Table::fmt(random_report.makespan, 0)});

  for (auto kind : {core::PolicyKind::kGLoadSharing, core::PolicyKind::kVReconfiguration}) {
    const auto report = core::run_policy_on_trace(kind, trace, config);
    table.add_row({report.policy, Table::fmt(report.total_execution, 0),
                   Table::fmt(report.avg_slowdown), Table::fmt(report.p95_slowdown),
                   Table::fmt(report.makespan, 0)});
  }
  std::printf("Custom policy demo: %d jobs on %d workstations\n", num_jobs, nodes);
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
