// Writing a custom scheduling policy against the public API.
//
// Implements "Random-Fit": each arriving job goes to a uniformly random
// workstation that currently accepts work — a classic strawman — registers
// it in the PolicyRegistry, and races it against the shipped policies on the
// same trace. Registration makes the policy addressable as the spec string
// "random-fit:seed=7", exactly like the built-ins — scenario files and
// vrc_run-style drivers in this process can name it too. Demonstrates the
// SchedulerPolicy hooks, cluster operations, and per-policy statistics.
//
//   ./custom_policy [--jobs N] [--nodes N]
#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.h"
#include "sim/rng.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_spec.h"

using namespace vrc;

namespace {

/// Random-fit: place each arrival on a random workstation that passes the
/// live admission check; retry pending jobs periodically.
class RandomFit : public cluster::SchedulerPolicy {
 public:
  explicit RandomFit(std::uint64_t seed = 7) : rng_(seed) {}

  const char* name() const override { return "Random-Fit"; }

  void on_job_arrival(cluster::Cluster& cluster, cluster::RunningJob& job) override {
    if (!try_place(cluster, job)) ++blocked_;
  }

  void on_periodic(cluster::Cluster& cluster) override {
    for (cluster::RunningJob* job : cluster.pending_jobs()) {
      if (!try_place(cluster, *job)) break;
    }
  }

  std::vector<std::pair<std::string, double>> stats() const override {
    return {{"blocked_submissions", static_cast<double>(blocked_)}};
  }

 private:
  bool try_place(cluster::Cluster& cluster, cluster::RunningJob& job) {
    const Bytes hint = std::max(job.demand, cluster.config().admission_demand_estimate);
    const std::size_t n = cluster.num_nodes();
    const std::size_t start = rng_.uniform_index(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto node_id = static_cast<workload::NodeId>((start + i) % n);
      if (cluster.node(node_id).accepts_new_job(hint)) {
        if (node_id == job.home_node) {
          cluster.place_local(job, node_id);
        } else {
          cluster.place_remote(job, node_id);
        }
        return true;
      }
    }
    return false;
  }

  sim::Rng rng_;
  std::uint64_t blocked_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  int num_jobs = 300;
  int nodes = 16;
  util::FlagSet flags;
  flags.add_int("jobs", &num_jobs, "jobs to generate");
  flags.add_int("nodes", &nodes, "number of workstations");
  if (!flags.parse(argc, argv)) return 1;

  // Register Random-Fit alongside the built-ins: the factory validates its
  // params with a ParamReader, so "random-fit:sead=7" fails with the same
  // precise diagnostics the shipped policies give.
  core::PolicyRegistry::instance().register_policy(
      "random-fit",
      [](const core::PolicyParams& params,
         std::string* error) -> std::unique_ptr<cluster::SchedulerPolicy> {
        core::ParamReader reader("random-fit", params);
        long long seed = 7;
        reader.read_int64("seed", &seed);
        if (!reader.finish(error)) return nullptr;
        return std::make_unique<RandomFit>(static_cast<std::uint64_t>(seed));
      },
      {{"seed", "int", "7", "placement RNG seed"}});

  workload::TraceSpec trace_spec;
  trace_spec.group = workload::WorkloadGroup::kSpec;
  trace_spec.num_jobs = static_cast<std::size_t>(num_jobs);
  trace_spec.duration = 1800.0;
  trace_spec.seed = 21;
  trace_spec.name = "custom-demo";
  const auto trace = trace_spec.build(static_cast<std::uint32_t>(nodes));
  const auto config = core::paper_cluster_for(trace.group(), static_cast<std::size_t>(nodes));

  using util::Table;
  Table table({"policy", "T_exe (s)", "avg slowdown", "p95 slowdown", "makespan (s)"});

  for (const char* text : {"random-fit:seed=7", "g-loadsharing", "v-reconf"}) {
    std::string error;
    const auto spec = core::PolicySpec::parse(text, &error);
    const auto report =
        spec ? core::run_policy_on_trace(*spec, trace, config, {}, &error) : std::nullopt;
    if (!report) {
      std::fprintf(stderr, "custom_policy: %s\n", error.c_str());
      return 1;
    }
    table.add_row({report->policy, Table::fmt(report->total_execution, 0),
                   Table::fmt(report->avg_slowdown), Table::fmt(report->p95_slowdown),
                   Table::fmt(report->makespan, 0)});
  }
  std::printf("Custom policy demo: %d jobs on %d workstations\n", num_jobs, nodes);
  std::fputs(table.to_ascii().c_str(), stdout);
  return 0;
}
