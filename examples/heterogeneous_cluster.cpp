// Heterogeneous-cluster extension (the paper's §6 notes heterogeneity as an
// implementation issue): a cluster mixing fast/large and slow/small
// workstations. Per §2.3, in a heterogeneous system the reserved
// workstation will naturally be one with relatively large memory — this
// example shows exactly that happening.
//
//   ./heterogeneous_cluster [--jobs N]
#include <cstdio>
#include <map>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_spec.h"

using namespace vrc;

int main(int argc, char** argv) {
  int num_jobs = 450;
  util::FlagSet flags;
  flags.add_int("jobs", &num_jobs, "jobs to generate");
  if (!flags.parse(argc, argv)) return 1;

  // 16 "big" workstations (400 MHz / 384 MB, the paper-cluster-1 hardware)
  // and 16 older ones (233 MHz / 192 MB), declared as per-node config
  // overrides — the same `node.<i>.<field>=value` text a scenario file uses.
  cluster::ClusterConfig config = cluster::ClusterConfig::paper_cluster1(32);
  std::map<std::string, std::string> overrides;
  for (int i = 16; i < 32; ++i) {
    const std::string prefix = "node." + std::to_string(i) + ".";
    overrides[prefix + "cpu_mhz"] = "233";
    overrides[prefix + "memory"] = "192MB";
    overrides[prefix + "swap"] = "192MB";
  }
  std::string error;
  if (!config.apply_overrides(overrides, &error)) {
    std::fprintf(stderr, "heterogeneous_cluster: %s\n", error.c_str());
    return 1;
  }

  workload::TraceSpec trace_spec;
  trace_spec.group = workload::WorkloadGroup::kSpec;
  trace_spec.num_jobs = static_cast<std::size_t>(num_jobs);
  trace_spec.duration = 1800.0;
  trace_spec.seed = 11;
  trace_spec.name = "hetero";
  const auto trace = trace_spec.build(32);

  // Track where reserved service happens.
  class InstrumentedVRecon : public core::VReconfiguration {
   public:
    using core::VReconfiguration::VReconfiguration;
    void on_migration_complete(cluster::Cluster& cluster, cluster::RunningJob& job) override {
      if (cluster.node(job.node).reserved()) ++service_by_node[job.node];
      core::VReconfiguration::on_migration_complete(cluster, job);
    }
    std::map<workload::NodeId, int> service_by_node;
  };

  const auto baseline = core::make_policy(core::PolicySpec("g-loadsharing"), &error);
  if (!baseline) {
    std::fprintf(stderr, "heterogeneous_cluster: %s\n", error.c_str());
    return 1;
  }
  InstrumentedVRecon vrecon;
  const auto base = core::run_experiment(trace, config, *baseline);
  const auto ours = core::run_experiment(trace, config, vrecon);

  using util::Table;
  Table table({"metric", "G-Loadsharing", "V-Reconfiguration", "reduction"});
  table.add_row({"total execution time (s)", Table::fmt(base.total_execution, 0),
                 Table::fmt(ours.total_execution, 0),
                 Table::pct(metrics::reduction(base.total_execution, ours.total_execution))});
  table.add_row({"average slowdown", Table::fmt(base.avg_slowdown),
                 Table::fmt(ours.avg_slowdown),
                 Table::pct(metrics::reduction(base.avg_slowdown, ours.avg_slowdown))});
  table.add_row({"total paging time (s)", Table::fmt(base.total_page, 0),
                 Table::fmt(ours.total_page, 0),
                 Table::pct(metrics::reduction(base.total_page, ours.total_page))});
  std::printf("Heterogeneous cluster: 16 x (400 MHz, 384 MB) + 16 x (233 MHz, 192 MB)\n");
  std::fputs(table.to_ascii().c_str(), stdout);

  int on_large = 0, on_small = 0;
  for (const auto& [node, count] : vrecon.service_by_node) {
    (node < 16 ? on_large : on_small) += count;
  }
  std::printf("reserved service events: %d on large-memory nodes, %d on small nodes\n",
              on_large, on_small);
  std::printf("(§2.3: \"a reserved workstation will be the one with relatively large "
              "physical memory space\")\n");
  return 0;
}
