// General-purpose simulation driver: run any registered policy on any
// standard or generated or file-loaded trace, on a cluster of any size, and
// print the full report (optionally as CSV rows for sweeps).
//
//   ./simulate --policy vrecon --group spec --trace 4
//   ./simulate --policy "v-reconf:early_release=0,max_reservations=2" --trace 2
//   ./simulate --policy gls --jobs 400 --duration 1800 --seed 9 --nodes 16
//   ./simulate --policy oracle --load-trace my.trace --csv
//   ./simulate --trace 3 --set memory_threshold=0.9,node.0.memory=128MB
//
// The policy flag takes a full registry spec (name[:key=value,...]); the
// classic short names (gls, vrecon, local, suspend, oracle) are registry
// aliases. For whole sweeps, see vrc_run.
#include <cstdio>
#include <map>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/trace_spec.h"

using namespace vrc;

int main(int argc, char** argv) {
  std::string policy_text = "vrecon";
  std::string group_name = "spec";
  std::string load_path;
  std::string overrides;
  int trace_index = 0;  // 0 = generate from --jobs/--duration
  int jobs = 300;
  double duration = 1800.0;
  int nodes = 32;
  long long seed = 1;
  double sampling = 1.0;
  bool csv = false;
  bool log_info = false;

  util::FlagSet flags;
  flags.add_string("policy", &policy_text,
                   "policy spec name[:key=value,...], e.g. v-reconf:early_release=0 "
                   "(aliases: gls, vrecon, local, suspend, oracle)");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  flags.add_int("trace", &trace_index, "standard trace 1..5 (0: generate from --jobs)");
  flags.add_int("jobs", &jobs, "jobs to generate when --trace 0");
  flags.add_double("duration", &duration, "submission window (s) when --trace 0");
  flags.add_int("nodes", &nodes, "number of workstations");
  flags.add_int64("seed", &seed, "trace generation seed");
  flags.add_double("sampling-interval", &sampling, "metric sampling interval (s)");
  flags.add_string("load-trace", &load_path, "replay this trace file");
  flags.add_string("set", &overrides,
                   "comma-separated cluster config overrides, e.g. memory_threshold=0.9");
  flags.add_bool("csv", &csv, "print one CSV row instead of the report");
  flags.add_bool("log", &log_info, "narrate scheduler decisions");
  if (!flags.parse(argc, argv)) return 1;
  if (log_info) util::set_log_level(util::LogLevel::kInfo);

  std::string error;
  const std::optional<core::PolicySpec> policy = core::PolicySpec::parse(policy_text, &error);
  if (!policy) {
    std::fprintf(stderr, "simulate: %s\n", error.c_str());
    return 1;
  }
  workload::WorkloadGroup group;
  if (!parse_workload_group(group_name, &group)) {
    std::fprintf(stderr, "simulate: unknown group '%s' (expected spec or apps)\n",
                 group_name.c_str());
    return 1;
  }

  const workload::Trace trace = [&] {
    if (!load_path.empty()) return workload::Trace::load_from_file(load_path);
    workload::TraceSpec spec;
    spec.group = group;
    if (trace_index >= 1 && trace_index <= 5) {
      spec.standard_index = trace_index;
    } else {
      spec.num_jobs = static_cast<std::size_t>(jobs);
      spec.duration = duration;
      spec.seed = static_cast<std::uint64_t>(seed);
    }
    return spec.build(static_cast<std::uint32_t>(nodes));
  }();

  auto config = core::paper_cluster_for(trace.group(), static_cast<std::size_t>(nodes));
  if (!overrides.empty()) {
    std::map<std::string, std::string> pairs;
    std::size_t start = 0;
    while (start <= overrides.size()) {
      std::size_t end = overrides.find(',', start);
      if (end == std::string::npos) end = overrides.size();
      const std::string item = overrides.substr(start, end - start);
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "simulate: --set '%s' is not key=value\n", item.c_str());
        return 1;
      }
      pairs[item.substr(0, eq)] = item.substr(eq + 1);
      if (end == overrides.size()) break;
      start = end + 1;
    }
    if (!config.apply_overrides(pairs, &error)) {
      std::fprintf(stderr, "simulate: %s\n", error.c_str());
      return 1;
    }
  }

  core::ExperimentOptions options;
  options.collector.sampling_intervals = {sampling};
  const auto report = core::run_policy_on_trace(*policy, trace, config, options, &error);
  if (!report) {
    std::fprintf(stderr, "simulate: %s\n", error.c_str());
    return 1;
  }

  if (csv) {
    util::Table table({"policy", "trace", "nodes", "jobs", "completed", "makespan",
                       "t_exe", "t_cpu", "t_page", "t_que", "t_mig", "avg_slowdown",
                       "idle_mb", "skew"});
    using util::Table;
    table.add_row({report->policy, report->trace, std::to_string(nodes),
                   std::to_string(report->jobs_submitted),
                   std::to_string(report->jobs_completed), Table::fmt(report->makespan, 1),
                   Table::fmt(report->total_execution, 1), Table::fmt(report->total_cpu, 1),
                   Table::fmt(report->total_page, 1), Table::fmt(report->total_queue, 1),
                   Table::fmt(report->total_migration, 1), Table::fmt(report->avg_slowdown, 4),
                   Table::fmt(report->avg_idle_memory_mb, 1),
                   Table::fmt(report->avg_balance_skew, 4)});
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(metrics::describe(*report).c_str(), stdout);
  }
  return 0;
}
