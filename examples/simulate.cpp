// General-purpose simulation driver: run any shipped policy on any standard
// or generated or file-loaded trace, on a cluster of any size, and print the
// full report (optionally as CSV rows for sweeps).
//
//   ./simulate --policy vrecon --group spec --trace 4
//   ./simulate --policy gls --jobs 400 --duration 1800 --seed 9 --nodes 16
//   ./simulate --policy oracle --load-trace my.trace --csv
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/trace_generator.h"

using namespace vrc;

namespace {

bool parse_policy(const std::string& name, core::PolicyKind* kind) {
  if (name == "gls" || name == "g-loadsharing") {
    *kind = core::PolicyKind::kGLoadSharing;
  } else if (name == "vrecon" || name == "v-reconfiguration") {
    *kind = core::PolicyKind::kVReconfiguration;
  } else if (name == "local") {
    *kind = core::PolicyKind::kLocalOnly;
  } else if (name == "suspend") {
    *kind = core::PolicyKind::kSuspension;
  } else if (name == "oracle") {
    *kind = core::PolicyKind::kOracleDemands;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string policy_name = "vrecon";
  std::string group_name = "spec";
  std::string load_path;
  int trace_index = 0;  // 0 = generate from --jobs/--duration
  int jobs = 300;
  double duration = 1800.0;
  int nodes = 32;
  long long seed = 1;
  double sampling = 1.0;
  bool csv = false;
  bool log_info = false;

  util::FlagSet flags;
  flags.add_string("policy", &policy_name, "gls | vrecon | local | suspend | oracle");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  flags.add_int("trace", &trace_index, "standard trace 1..5 (0: generate from --jobs)");
  flags.add_int("jobs", &jobs, "jobs to generate when --trace 0");
  flags.add_double("duration", &duration, "submission window (s) when --trace 0");
  flags.add_int("nodes", &nodes, "number of workstations");
  flags.add_int64("seed", &seed, "trace generation seed");
  flags.add_double("sampling-interval", &sampling, "metric sampling interval (s)");
  flags.add_string("load-trace", &load_path, "replay this trace file");
  flags.add_bool("csv", &csv, "print one CSV row instead of the report");
  flags.add_bool("log", &log_info, "narrate scheduler decisions");
  if (!flags.parse(argc, argv)) return 1;
  if (log_info) util::set_log_level(util::LogLevel::kInfo);

  core::PolicyKind kind;
  if (!parse_policy(policy_name, &kind)) {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_name.c_str());
    return 1;
  }
  workload::WorkloadGroup group;
  if (!parse_workload_group(group_name, &group)) {
    std::fprintf(stderr, "unknown group '%s'\n", group_name.c_str());
    return 1;
  }

  workload::Trace trace = [&] {
    if (!load_path.empty()) return workload::Trace::load_from_file(load_path);
    if (trace_index >= 1 && trace_index <= 5) {
      return workload::standard_trace(group, trace_index, static_cast<std::uint32_t>(nodes));
    }
    workload::TraceParams params;
    params.name = "generated";
    params.group = group;
    params.num_jobs = static_cast<std::size_t>(jobs);
    params.duration = duration;
    params.num_nodes = static_cast<std::uint32_t>(nodes);
    params.seed = static_cast<std::uint64_t>(seed);
    return workload::generate_trace(params);
  }();

  const auto config =
      core::paper_cluster_for(trace.group(), static_cast<std::size_t>(nodes));
  core::ExperimentOptions options;
  options.collector.sampling_intervals = {sampling};
  const auto report = core::run_policy_on_trace(kind, trace, config, options);

  if (csv) {
    util::Table table({"policy", "trace", "nodes", "jobs", "completed", "makespan",
                       "t_exe", "t_cpu", "t_page", "t_que", "t_mig", "avg_slowdown",
                       "idle_mb", "skew"});
    using util::Table;
    table.add_row({report.policy, report.trace, std::to_string(nodes),
                   std::to_string(report.jobs_submitted), std::to_string(report.jobs_completed),
                   Table::fmt(report.makespan, 1), Table::fmt(report.total_execution, 1),
                   Table::fmt(report.total_cpu, 1), Table::fmt(report.total_page, 1),
                   Table::fmt(report.total_queue, 1), Table::fmt(report.total_migration, 1),
                   Table::fmt(report.avg_slowdown, 4), Table::fmt(report.avg_idle_memory_mb, 1),
                   Table::fmt(report.avg_balance_skew, 4)});
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(metrics::describe(report).c_str(), stdout);
  }
  return 0;
}
