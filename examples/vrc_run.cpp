// Unified scenario driver: run any declarative experiment end to end.
//
// A scenario comes from a spec file, from flags, or both (flags refine the
// file):
//
//   ./vrc_run --scenario examples/scenarios/paper_cluster1.scn
//   ./vrc_run --traces "spec:trace=3" --policies "g-loadsharing;v-reconf"
//   ./vrc_run --traces "spec:trace=1;spec:trace=2"
//             --policies "v-reconf:early_release=0;v-reconf"
//             --set memory_threshold=0.9 --nodes 8 --trials 3 --csv
//
// List-valued flags are ';'-separated because ',' separates params inside a
// single trace/policy spec. Exits non-zero with the registry's message on an
// unknown policy, a bad param, or a bad config override.
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "core/policy_registry.h"
#include "metrics/perf_counters.h"
#include "runner/scenario.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_generator.h"

using namespace vrc;

namespace {

// Applies "<directive> <item>" for every ';'-separated item in `list`.
bool apply_list(runner::ScenarioSpec* spec, const std::string& directive,
                const std::string& list, std::string* error) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(';', start);
    if (end == std::string::npos) end = list.size();
    const std::string item = list.substr(start, end - start);
    if (!item.empty() && !spec->apply_line(directive + " " + item, error)) return false;
    if (end == list.size()) break;
    start = end + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_path;
  std::string traces;
  std::string policies;
  std::string overrides;
  std::string cluster;
  int nodes = 0;           // 0: keep the scenario's value
  int trials = 0;          // 0: keep the scenario's value
  long long base_seed = -1;  // -1: keep the scenario's value
  double sampling_interval = 0.0;
  double max_sim_time = 0.0;
  int jobs = 0;
  bool csv = false;
  bool stream = false;
  bool malleable = false;
  bool perf_counters = false;
  bool list_policies = false;
  bool list_overrides = false;
  bool list_traces = false;

  util::FlagSet flags;
  flags.add_string("scenario", &scenario_path, "scenario spec file to load first");
  flags.add_string("traces", &traces, "';'-separated trace specs, e.g. spec:trace=1;spec:trace=2");
  flags.add_string("policies", &policies,
                   "';'-separated policy specs, e.g. g-loadsharing;v-reconf:early_release=0");
  flags.add_string("set", &overrides, "comma-separated config overrides, e.g. memory_threshold=0.9");
  flags.add_string("cluster", &cluster, "auto | paper1 | paper2");
  flags.add_int("nodes", &nodes, "number of workstations (0: scenario default)");
  flags.add_int("trials", &trials, "independent repetitions (0: scenario default)");
  flags.add_int64("base-seed", &base_seed, "sweep base seed (-1: scenario default)");
  flags.add_double("sampling-interval", &sampling_interval,
                   "metric sampling interval in seconds (0: scenario default)");
  flags.add_double("max-sim-time", &max_sim_time,
                   "simulated-time safety cap in seconds (0: scenario default)");
  flags.add_int("jobs", &jobs, "parallel worker threads (0 = one per hardware thread)");
  flags.add_bool("csv", &csv, "emit CSV instead of an ASCII table");
  flags.add_bool("stream", &stream,
                 "pump workloads through a pull-based arrival source instead of materializing "
                 "whole traces (same results for generated workloads, O(concurrent) memory)");
  flags.add_bool("malleable", &malleable,
                 "generate malleable jobs (width [1,2], fraction 1) in traces without their own "
                 "malleable= fraction, and print resize columns");
  flags.add_bool("perf-counters", &perf_counters,
                 "collect engine perf counters across all runs and print them to stderr");
  flags.add_bool("list-policies", &list_policies,
                 "print every registered policy with its parameters, then exit");
  flags.add_bool("list-overrides", &list_overrides,
                 "print every `--set` config override key, then exit");
  flags.add_bool("list-traces", &list_traces,
                 "print the standard trace shapes and the trace-spec syntax, then exit");
  if (!flags.parse(argc, argv)) return 1;

  if (list_policies) {
    const core::PolicyRegistry& registry = core::PolicyRegistry::instance();
    for (const std::string& name : registry.names()) {
      std::printf("%s\n", name.c_str());
      const std::vector<core::PolicyParamDoc>* docs = registry.param_docs(name);
      if (docs == nullptr) continue;
      for (const core::PolicyParamDoc& doc : *docs) {
        std::printf("  %-24s %-10s default %-8s %s\n", doc.key.c_str(), doc.type.c_str(),
                    doc.default_value.c_str(), doc.help.c_str());
      }
    }
    return 0;
  }
  if (list_overrides) {
    for (const cluster::ClusterConfig::OverrideKeyDoc& doc :
         cluster::ClusterConfig::override_keys()) {
      std::printf("%-28s %-10s %s\n", doc.key.c_str(), doc.type.c_str(), doc.help.c_str());
    }
    return 0;
  }
  if (list_traces) {
    std::printf("standard traces (paper §3.3.2; use as spec:trace=N or apps:trace=N):\n");
    std::printf("  %-6s %-6s %-6s %-6s %-9s\n", "index", "sigma", "mu", "jobs", "duration");
    for (int index = 1; index <= 5; ++index) {
      const workload::StandardTraceShape shape = workload::standard_trace_shape(index);
      std::printf("  %-6d %-6.1f %-6.1f %-6zu %-9.0f\n", index, shape.sigma, shape.mu,
                  shape.num_jobs, shape.duration);
    }
    std::printf("\ngenerated workloads:\n");
    std::printf("  <spec|apps>:trace=1..5[,seed=S,arrival_scale=A,nodes=N,name=X]\n");
    std::printf("  <spec|apps>:jobs=J,duration=D[,seed=S,arrival_scale=A,nodes=N,name=X]\n");
    std::printf("\nSWF log replay (Standard Workload Format):\n");
    std::printf(
        "  swf:file=PATH[,scale=S,max_jobs=J,min_runtime=R,group=spec|apps,nodes=N,name=X]\n");
    std::printf("  scenario-file form: trace swf file=PATH scale=S ...\n");
    std::printf("\nadd --stream (or `stream on` in a scenario file) to pump arrivals through\n");
    std::printf("a pull-based source with O(concurrent jobs) memory.\n");
    return 0;
  }

  std::string error;
  runner::ScenarioSpec spec;
  if (!scenario_path.empty()) {
    std::optional<runner::ScenarioSpec> loaded = runner::ScenarioSpec::load(scenario_path, &error);
    if (!loaded) {
      std::fprintf(stderr, "vrc_run: %s\n", error.c_str());
      return 1;
    }
    spec = std::move(*loaded);
  }

  // Flags refine the loaded scenario: list flags append, scalar flags
  // override. Everything funnels through apply_line so the diagnostics match
  // the spec-file ones.
  const bool ok =
      apply_list(&spec, "trace", traces, &error) &&
      apply_list(&spec, "policy", policies, &error) &&
      (overrides.empty() || spec.apply_line("set " + overrides, &error)) &&
      (cluster.empty() || spec.apply_line("cluster " + cluster, &error)) &&
      (!stream || spec.apply_line("stream on", &error)) &&
      (!malleable || spec.apply_line("malleable on", &error)) &&
      (nodes == 0 || spec.apply_line("nodes " + std::to_string(nodes), &error)) &&
      (trials == 0 || spec.apply_line("trials " + std::to_string(trials), &error)) &&
      (base_seed < 0 || spec.apply_line("base_seed " + std::to_string(base_seed), &error)) &&
      (sampling_interval == 0.0 ||
       spec.apply_line("sampling_interval " + util::Table::fmt(sampling_interval, 6), &error)) &&
      (max_sim_time == 0.0 ||
       spec.apply_line("max_sim_time " + util::Table::fmt(max_sim_time, 6), &error));
  if (!ok) {
    std::fprintf(stderr, "vrc_run: %s\n", error.c_str());
    return 1;
  }

  // Enable before run_scenario so every cell's run_experiment captures; the
  // counters are write-only observability and cannot change any result.
  if (perf_counters) metrics::set_perf_capture_enabled(true);

  std::optional<runner::ScenarioRun> run = runner::run_scenario(spec, jobs, &error);
  if (!run) {
    std::fprintf(stderr, "vrc_run: %s\n", error.c_str());
    return 1;
  }

  using util::Table;
  // Fault columns only when the scenario configures faults, so fault-free
  // scenario goldens stay byte-identical.
  const bool with_faults =
      !spec.faults.empty() || spec.config_overrides.count("fault.mtbf") > 0;
  // Same gating for the resize columns: rigid-scenario goldens never change.
  const bool with_malleable = spec.malleable_configured();
  std::vector<std::string> header = {"trial", "trace", "policy", "jobs", "completed",
                                     "makespan", "t_exe", "t_cpu", "t_page", "t_que", "t_mig",
                                     "avg_slowdown", "idle_mb", "skew"};
  if (with_faults) {
    header.insert(header.end(), {"crashes", "killed", "restarts", "xfail", "avail"});
  }
  if (with_malleable) {
    header.insert(header.end(), {"resizes", "width_time", "blocked_saved"});
  }
  Table table(header);
  for (int trial = 0; trial < run->num_trials; ++trial) {
    for (std::size_t t = 0; t < run->num_traces; ++t) {
      for (std::size_t p = 0; p < run->num_policies; ++p) {
        const metrics::RunReport& report = run->cell(trial, t, p).report;
        std::vector<std::string> row = {
            std::to_string(trial), report.trace, spec.policies[p].print(),
            std::to_string(report.jobs_submitted), std::to_string(report.jobs_completed),
            Table::fmt(report.makespan, 1), Table::fmt(report.total_execution, 1),
            Table::fmt(report.total_cpu, 1), Table::fmt(report.total_page, 1),
            Table::fmt(report.total_queue, 1), Table::fmt(report.total_migration, 1),
            Table::fmt(report.avg_slowdown, 4), Table::fmt(report.avg_idle_memory_mb, 1),
            Table::fmt(report.avg_balance_skew, 4)};
        if (with_faults) {
          row.push_back(std::to_string(report.node_crashes));
          row.push_back(std::to_string(report.jobs_killed));
          row.push_back(std::to_string(report.job_restarts));
          row.push_back(std::to_string(report.transfer_failures));
          row.push_back(Table::fmt(report.availability, 4));
        }
        if (with_malleable) {
          double blocked_saved = 0.0;
          for (const auto& [key, value] : report.policy_stats) {
            if (key == "blocked_time_saved") blocked_saved = value;
          }
          row.push_back(std::to_string(report.resizes));
          row.push_back(Table::fmt(report.width_time_product, 1));
          row.push_back(Table::fmt(blocked_saved, 1));
        }
        table.add_row(row);
      }
    }
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_ascii().c_str(), stdout);

  if (perf_counters) {
    // stderr, so piping the table to a file or the golden-diff keeps working.
    const metrics::PerfCounters totals = metrics::take_perf_aggregate();
    std::fprintf(stderr, "perf counters (all trials/cells):\n");
    for (const auto& [label, value] : totals.entries()) {
      std::fprintf(stderr, "  %-24s %llu\n", label,
                   static_cast<unsigned long long>(value));
    }
    if (totals.exchange_rounds > 0) {
      std::fprintf(stderr, "  %-24s %.1f\n", "snapshots/exchange",
                   static_cast<double>(totals.exchange_dirty_visited) /
                       static_cast<double>(totals.exchange_rounds));
    }
    if (totals.tick_rounds > 0) {
      std::fprintf(stderr, "  %-24s %.1f\n", "node_ticks/tick",
                   static_cast<double>(totals.node_ticks) /
                       static_cast<double>(totals.tick_rounds));
    }
  }
  return 0;
}
