// Quickstart: simulate one SPEC workload trace on the paper's 32-node
// cluster under the dynamic load sharing baseline (G-Loadsharing) and under
// virtual reconfiguration (V-Reconfiguration), then print the comparison.
//
//   ./quickstart [--trace N] [--nodes N] [--group spec|apps]
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/table.h"
#include "workload/trace_generator.h"

int main(int argc, char** argv) {
  int trace_index = 3;
  int nodes = 32;
  std::string group_name = "spec";
  bool log_info = false;
  vrc::util::FlagSet flags;
  flags.add_int("trace", &trace_index, "standard trace index 1..5");
  flags.add_int("nodes", &nodes, "number of workstations");
  flags.add_string("group", &group_name, "workload group: spec | apps");
  flags.add_bool("log", &log_info, "narrate scheduler decisions (INFO log)");
  if (!flags.parse(argc, argv)) return 1;

  if (log_info) vrc::util::set_log_level(vrc::util::LogLevel::kInfo);

  vrc::workload::WorkloadGroup group;
  if (!vrc::workload::parse_workload_group(group_name, &group)) {
    std::fprintf(stderr, "unknown group '%s'\n", group_name.c_str());
    return 1;
  }

  const vrc::workload::Trace trace =
      vrc::workload::standard_trace(group, trace_index, static_cast<std::uint32_t>(nodes));
  const vrc::cluster::ClusterConfig config =
      vrc::core::paper_cluster_for(group, static_cast<std::size_t>(nodes));

  std::printf("Trace %s: %zu jobs over %.0f s on %d workstations\n", trace.name().c_str(),
              trace.size(), trace.duration(), nodes);

  const vrc::core::Comparison cmp = vrc::core::compare_policies(
      vrc::core::PolicyKind::kGLoadSharing, vrc::core::PolicyKind::kVReconfiguration, trace,
      config);

  vrc::util::Table table({"metric", "G-Loadsharing", "V-Reconfiguration", "reduction"});
  using vrc::util::Table;
  table.add_row({"total execution time (s)", Table::fmt(cmp.baseline.total_execution, 0),
                 Table::fmt(cmp.ours.total_execution, 0),
                 Table::pct(cmp.execution_reduction())});
  table.add_row({"total queuing time (s)", Table::fmt(cmp.baseline.total_queue, 0),
                 Table::fmt(cmp.ours.total_queue, 0), Table::pct(cmp.queue_reduction())});
  table.add_row({"total paging time (s)", Table::fmt(cmp.baseline.total_page, 0),
                 Table::fmt(cmp.ours.total_page, 0),
                 Table::pct(vrc::metrics::reduction(cmp.baseline.total_page,
                                                    cmp.ours.total_page))});
  table.add_row({"average slowdown", Table::fmt(cmp.baseline.avg_slowdown),
                 Table::fmt(cmp.ours.avg_slowdown), Table::pct(cmp.slowdown_reduction())});
  table.add_row({"avg idle memory (MB)", Table::fmt(cmp.baseline.avg_idle_memory_mb, 0),
                 Table::fmt(cmp.ours.avg_idle_memory_mb, 0),
                 Table::pct(cmp.idle_memory_reduction())});
  table.add_row({"avg job balance skew", Table::fmt(cmp.baseline.avg_balance_skew),
                 Table::fmt(cmp.ours.avg_balance_skew),
                 Table::pct(cmp.balance_skew_reduction())});
  table.add_row({"jobs completed", std::to_string(cmp.baseline.jobs_completed),
                 std::to_string(cmp.ours.jobs_completed), ""});
  table.add_row({"makespan (s)", Table::fmt(cmp.baseline.makespan, 0),
                 Table::fmt(cmp.ours.makespan, 0), ""});
  table.add_row({"migrations", std::to_string(cmp.baseline.migrations),
                 std::to_string(cmp.ours.migrations), ""});
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf("\n%s\n%s", vrc::metrics::describe(cmp.baseline).c_str(),
              vrc::metrics::describe(cmp.ours).c_str());
  return 0;
}
